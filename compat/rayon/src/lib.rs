//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset of the rayon 1.x API this workspace uses:
//! [`scope`] with [`Scope::spawn`] (structured fork/join over
//! `std::thread::scope`), [`join`], and a [`ThreadPool`] built with
//! [`ThreadPoolBuilder::num_threads`]. Unlike real rayon there is no
//! work-stealing deque — `Scope::spawn` maps to one OS thread per task
//! — so callers that want bounded parallelism spawn exactly
//! `pool.current_num_threads()` worker tasks and share a work queue,
//! which is how `hds-engine`'s suite runner uses it.

#![forbid(unsafe_code)]

use std::fmt;

/// A scope for spawning borrowed tasks; created by [`scope`] or
/// [`ThreadPool::scope`]. All spawned tasks complete before `scope`
/// returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope. The task
    /// starts immediately on its own thread and is joined when the
    /// enclosing [`scope`] call returns.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || body(&Scope { inner }));
    }
}

/// Creates a scope in which tasks can borrow local data; returns only
/// after every task spawned inside has completed (panics in tasks
/// propagate, as with real rayon).
pub fn scope<'env, F, R>(op: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| op(&Scope { inner: s }))
}

/// Runs both closures, potentially in parallel, and returns both
/// results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("joined task panicked");
        (ra, rb)
    })
}

/// Error building a [`ThreadPool`]. The shim never actually fails;
/// the type exists so call sites match real rayon's `Result` API.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds a [`ThreadPool`] with a configured degree of parallelism.
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default thread count (the machine's
    /// available parallelism).
    #[must_use]
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads; 0 (the default) means the
    /// machine's available parallelism.
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Creates the pool.
    ///
    /// # Errors
    ///
    /// Never fails in this shim; the `Result` mirrors real rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A handle carrying a configured degree of parallelism. The shim has
/// no resident worker threads: [`ThreadPool::install`] runs the closure
/// on the calling thread, and [`ThreadPool::scope`] spawns scoped
/// threads on demand — callers bound their fan-out with
/// [`ThreadPool::current_num_threads`].
#[derive(Clone, Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The configured degree of parallelism.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Executes `op` within the pool (on the calling thread in this
    /// shim).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// Creates a scope tied to this pool; equivalent to the free
    /// [`scope`] here.
    pub fn scope<'env, F, R>(&self, op: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        scope(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "b");
        assert_eq!(a, 4);
        assert_eq!(b, "b");
    }

    #[test]
    fn pool_builder_respects_num_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(|| 7), 7);
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn pool_scope_spawns() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..pool.current_num_threads() {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }
}
