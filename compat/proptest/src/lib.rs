//! Offline stand-in for `proptest`.
//!
//! Provides deterministic, generate-only property testing: the
//! [`proptest!`] macro runs each property for `ProptestConfig::cases`
//! generated inputs, seeded from the test's module path so failures
//! reproduce exactly. Shrinking is not implemented — a failing case
//! reports the case number; re-running deterministically regenerates
//! the same input. The strategy surface covers what this workspace's
//! property tests use: integer/float ranges, `any::<T>()`, tuples,
//! [`collection::vec`], [`strategy::Just`], `prop_map`, and
//! [`prop_oneof!`].

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test execution configuration and the per-case RNG.

    /// How many generated cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` inputs per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic per-case random source (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG for case `case` of the test named `name` — the same
        /// pair always yields the same sequence.
        #[must_use]
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A failed property case (returned by the `prop_assert*` macros).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given explanation.
    #[must_use]
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe strategy view (implementation detail of boxing).
    trait DynStrategy {
        type Value;
        fn gen_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_dyn(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice between boxed alternatives (see [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// A strategy choosing uniformly among `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $ty)
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = end.wrapping_sub(start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    start.wrapping_add((rng.next_u64() % (span + 1)) as $ty)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
        (A, B, C, D, E, F, G),
        (A, B, C, D, E, F, G, H),
        (A, B, C, D, E, F, G, H, I),
        (A, B, C, D, E, F, G, H, I, J),
        (A, B, C, D, E, F, G, H, I, J, K),
        (A, B, C, D, E, F, G, H, I, J, K, L)
    );
}

pub mod arbitrary {
    //! `any::<T>()`: full-domain strategies per type.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }
    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            rng.next_u64() as u16
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An admissible length range for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// The strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn gen_value(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` for each of `cases` generated
/// inputs. The body may use the `prop_assert*` macros and
/// `return Ok(())` / `?` with [`TestCaseError`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not panicking directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} (both {:?})",
            format!($($fmt)*),
            l
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -5i64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vecs_respect_size(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u32..5).prop_map(|n| n as u64),
            Just(99u64),
        ]) {
            prop_assert!(v < 5 || v == 99, "unexpected {v}");
        }

        #[test]
        fn tuples_and_any(pair in (any::<u32>(), crate::bool::ANY)) {
            let (_n, b) = pair;
            prop_assert!(usize::from(b) <= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let gen_seq = || {
            let mut rng = crate::test_runner::TestRng::for_case("seq", 7);
            (0..8)
                .map(|_| (0u64..1000).gen_value(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_seq(), gen_seq());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x is {x}");
            }
        }
        always_fails();
    }
}
