//! Offline stand-in for `serde_json`, over the serde shim's [`Value`]
//! model: renders values to JSON text (compact or pretty) and parses
//! JSON text back. Covers the full JSON grammar, which is more than the
//! workspace strictly needs — parsing robustness is cheap and keeps the
//! shim honest.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the shim's value model; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable JSON (two-space indents).
///
/// # Errors
///
/// Never fails for the shim's value model (see [`to_string`]).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax error or shape
/// mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    T::from_value(&value)
}

/// Parses JSON text into a dynamically typed [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax error.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` prints the shortest representation that parses
                // back exactly; force a trailing `.0` on integral floats
                // so the value re-parses as a float.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::msg(format!("expected `{lit}` at byte {pos}")))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::msg("unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::msg(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::msg("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::msg("bad \\u escape"))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::msg("bad \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::msg("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ASCII number");
    if text.is_empty() || text == "-" {
        return Err(Error::msg(format!("expected value at byte {start}")));
    }
    if !float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::I64(n));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::msg(format!("bad number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = parse_value_str(text).unwrap();
            assert_eq!(to_string(&Wrapper(v.clone())).unwrap(), text);
        }
    }

    /// A pass-through Serialize for raw values (test helper).
    struct Wrapper(Value);
    impl serde::Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":"x\ny"}],"c":{},"d":[]}"#;
        let v = parse_value_str(text).unwrap();
        assert_eq!(to_string(&Wrapper(v)).unwrap(), text);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse_value_str(r#"{"a":[1,2],"b":{"c":3.25}}"#).unwrap();
        let pretty = to_string_pretty(&Wrapper(v.clone())).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_from_str() {
        let ns: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(ns, vec![1, 2, 3]);
        assert!(from_str::<Vec<u64>>("[1, -2]").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<Vec<u64>>("[1] trailing").is_err());
    }

    #[test]
    fn integral_floats_keep_a_dot() {
        let v = Value::F64(3.0);
        assert_eq!(to_string(&Wrapper(v)).unwrap(), "3.0");
    }
}
