//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand` 0.8 API this workspace uses:
//! [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`], plus
//! [`Rng::gen_range`] over integer ranges and [`Rng::gen_bool`]. The
//! generator is xoshiro256++ (the same family the real `SmallRng` uses
//! on 64-bit targets) with SplitMix64 seed expansion, so sequences are
//! deterministic for a given seed — which is all the workloads require:
//! same seed, same synthetic "program".

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range called with empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $ty)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53 random bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1 << 60)).collect();
        let mut a = SmallRng::seed_from_u64(42);
        let differs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1 << 60)).collect();
        assert_ne!(same, differs, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
