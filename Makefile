# Developer entry points. `make verify` is the tier-1 gate: it must stay
# green on every commit.

CARGO ?= cargo

.PHONY: verify build test clippy bench-smoke telemetry-demo chaos-smoke bench-par chaos-crash bench-recover serve-smoke trace-smoke chaos-net bench-prefetch chaos-store bench-store chaos-cluster bench-cluster bench-trend

## Tier-1 gate: release build, full test suite, clippy clean, chaos smoke,
## parallel-runner smoke (bit-identical + speedup + worker-lag stats),
## chaos-crash smoke (supervised recovery is bit-identical), the
## recovery benchmark (checkpoint neutrality + snapshot sizes), the
## serving-layer smoke (sharded == sequential, graceful shedding), the
## flight-recorder smoke (tracing is bit-identical and crash dumps
## land), the hostile-network sweep (every fault schedule converges
## byte-identically), the prefetch-backend benchmark (per-backend
## determinism + seeded A/B reproducibility), the durable-store chaos
## sweep (kill/bit-rot/full-disk schedules recover byte-identically),
## the durable-store benchmark, the cluster chaos sweep (router +
## owner-fleet sessions byte-identical through kills, re-homes, and
## membership churn), the cluster benchmark (router goodput + migration
## latency), and the bench-trend gate (serving throughput, chaos
## goodput, backend throughput, store throughput, and router goodput vs
## the committed baselines).
verify: build test clippy chaos-smoke bench-par chaos-crash bench-recover serve-smoke trace-smoke chaos-net bench-prefetch chaos-store bench-store chaos-cluster bench-cluster bench-trend

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --workspace -- -D warnings

## One fast pass over every Criterion bench (includes observer_overhead,
## the zero-overhead-when-off check).
bench-smoke:
	$(CARGO) bench -p hds-bench

## Fault-injection smoke: 100 seeded chaos schedules over the benchmark
## suite (no panics, exact telemetry reconciliation, failed-edit runs
## degrade to the analyze baseline). Finishes in a few seconds.
chaos-smoke:
	$(CARGO) run --release -p hds-bench --bin chaos -- --schedules 100

## Crash-recovery smoke: 100 seeded kill schedules (phase-boundary,
## mid-edit, mid-handoff) under the supervisor — zero panics, exact
## recovery-telemetry reconciliation, and every recovered lineage
## bit-identical (report + image digest) to its crash-free twin.
chaos-crash:
	$(CARGO) run --release -p hds-bench --bin chaos_crash -- --schedules 100

## Recovery benchmark: checkpointing timing-neutrality, snapshot sizes,
## and a supervised kill-schedule sweep. Writes results/BENCH_recover.json.
bench-recover:
	$(CARGO) run --release -p hds-bench --bin bench_recover

## Parallel suite-runner smoke: the fig11 matrix sequentially vs 4
## workers — asserts bit-identical outcomes, measures the speedup, and
## profiles background-analysis worker lag. Writes
## results/BENCH_parallel.json.
bench-par:
	$(CARGO) run --release -p hds-bench --bin bench_parallel -- --test-scale

## Serving front-end smoke: open-loop load at 1/2/8 shards — asserts
## per-tenant reports bit-identical to standalone sessions, measures
## throughput and queue-depth quantiles, and demonstrates typed load
## shedding under a tight budget. Writes results/BENCH_serve.json.
serve-smoke:
	$(CARGO) run --release -p hds-bench --bin bench_serve -- --test-scale

## Flight-recorder smoke: every benchmark traced vs untraced (reports
## and image digests bit-identical, spans well nested, export parses),
## plus a forced supervised crash leaving a flightdump-*.json black
## box. Writes results/BENCH_trace.json.
trace-smoke:
	$(CARGO) run --release -p hds-bench --bin bench_trace -- --test-scale

## Hostile-network sweep: 100+ seeded fault schedules (drop, delay,
## duplicate, corrupt, partial write, disconnect) through the reliable
## client against the sharded server — zero panics, every run
## byte-identical to its fault-free twin. Writes results/BENCH_net.json.
chaos-net:
	$(CARGO) run --release -p hds-bench --bin chaos_net -- --test-scale

## Prefetch-backend benchmark: every BackendKind through the full
## online session path — asserts bit-identical reports across reruns
## and that the seeded A/B split reproduces exact per-tenant arms.
## Writes results/BENCH_prefetch.json.
bench-prefetch:
	$(CARGO) run --release -p hds-bench --bin bench_prefetch -- --test-scale

## Durable-store chaos sweep: 100+ seeded schedules — process kills
## swept across every mutating storage op (then a seeded page-cache
## crash and reopen), bit rot on segments and the manifest, focused and
## hostile fault scripts, and serve-path spill/load round trips on a
## hostile disk. Zero panics; every schedule recovers byte-identically
## or restarts from scratch with the restart attributed in telemetry.
chaos-store:
	$(CARGO) run --release -p hds-bench --bin chaos_store -- --test-scale

## Durable-store benchmark: spill/load/recovery-scan/compaction
## throughput and compaction write amplification. Writes
## results/BENCH_store.json.
bench-store:
	$(CARGO) run --release -p hds-bench --bin bench_store -- --test-scale

## Cluster chaos sweep: seeded schedules through the router tier and a
## fleet of owner processes — crash-free fleets at 2/4/8 owners, owners
## killed mid-chunk (restarted or re-homed), membership churn with live
## tenant migration, and kills landing mid-handoff. Zero panics; every
## schedule's reports byte-identical to standalone sessions.
chaos-cluster:
	$(CARGO) run --release -p hds-bench --bin chaos_cluster -- --test-scale

## Cluster benchmark: router goodput (deterministic events per poll) at
## 2/4/8 owners plus migration latency in polls vs the crash-free twin.
## Writes results/BENCH_cluster.json.
bench-cluster:
	$(CARGO) run --release -p hds-bench --bin bench_cluster -- --test-scale

## Bench-trend gate: the freshly written results/BENCH_serve.json,
## results/BENCH_net.json, results/BENCH_prefetch.json,
## results/BENCH_store.json, and results/BENCH_cluster.json
## (serve-smoke, chaos-net, bench-prefetch, bench-store, and
## bench-cluster run first under `make verify`) against the committed
## baselines — fails if serving throughput, chaos goodput, backend
## throughput, store throughput, or router goodput fell below 80% of
## HEAD's; skips with a note when either side is missing.
bench-trend:
	$(CARGO) run --release -p hds-bench --bin bench_trend

## Live telemetry walkthrough: per-cycle table, counter reconciliation,
## per-stream prefetch quality, Prometheus dump. Fast smoke scale; drop
## --test-scale for the paper-scale run.
telemetry-demo:
	$(CARGO) run --release -p hds-bench --bin telemetry_demo -- --test-scale
