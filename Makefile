# Developer entry points. `make verify` is the tier-1 gate: it must stay
# green on every commit.

CARGO ?= cargo

.PHONY: verify build test clippy bench-smoke telemetry-demo

## Tier-1 gate: release build, full test suite, clippy clean.
verify: build test clippy

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --workspace -- -D warnings

## One fast pass over every Criterion bench (includes observer_overhead,
## the zero-overhead-when-off check).
bench-smoke:
	$(CARGO) bench -p hds-bench

## Live telemetry walkthrough: per-cycle table, counter reconciliation,
## per-stream prefetch quality, Prometheus dump. Fast smoke scale; drop
## --test-scale for the paper-scale run.
telemetry-demo:
	$(CARGO) run --release -p hds-bench --bin telemetry_demo -- --test-scale
