# Developer entry points. `make verify` is the tier-1 gate: it must stay
# green on every commit.

CARGO ?= cargo

.PHONY: verify build test clippy bench-smoke telemetry-demo chaos-smoke

## Tier-1 gate: release build, full test suite, clippy clean, chaos smoke.
verify: build test clippy chaos-smoke

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --workspace -- -D warnings

## One fast pass over every Criterion bench (includes observer_overhead,
## the zero-overhead-when-off check).
bench-smoke:
	$(CARGO) bench -p hds-bench

## Fault-injection smoke: 100 seeded chaos schedules over the benchmark
## suite (no panics, exact telemetry reconciliation, failed-edit runs
## degrade to the analyze baseline). Finishes in a few seconds.
chaos-smoke:
	$(CARGO) run --release -p hds-bench --bin chaos -- --schedules 100

## Live telemetry walkthrough: per-cycle table, counter reconciliation,
## per-stream prefetch quality, Prometheus dump. Fast smoke scale; drop
## --test-scale for the paper-scale run.
telemetry-demo:
	$(CARGO) run --release -p hds-bench --bin telemetry_demo -- --test-scale
